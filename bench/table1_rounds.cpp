// Table 1: the paper's problem/rank/bounds table, verified empirically.
//
// For every problem we run the phase-parallel algorithm on an instance
// with a known (or measurable) rank and check that the number of parallel
// rounds equals the rank (exact-rank algorithms) or stays within the
// relaxed-rank bound. This is the "round-efficiency" column of the paper
// made executable.
//
// Every solver is dispatched through pp::registry::run on explicit
// problem_input descriptors, so the rows exercise exactly the API that
// benches, examples, and the CLI share.
#include <cstdio>

#include "bench_common.h"
#include "core/registry.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace {

void row(const char* problem, const char* rank_def, size_t rank, size_t rounds, bool ok) {
  std::printf("%-22s %-42s %10zu %10zu %6s\n", problem, rank_def, rank, rounds,
              ok ? "OK" : "FAIL");
  if (!ok) std::exit(1);
}

}  // namespace

int main() {
  const pp::context ctx = bench::env_context();
  bench::banner("Table 1: rank definitions, measured rounds == rank", "Table 1, Sec. 3-5", ctx);
  std::printf("%-22s %-42s %10s %10s %6s\n", "problem", "rank(x)", "rank(S)", "rounds", "");

  using pp::registry;

  {  // activity selection (Type 1 and Type 2): rank = max compatible chain
    pp::problem_input in = pp::activity_input{
        pp::random_activities(bench::scaled(200'000), 1'000'000, 2000, 500, 100, 1)};
    auto t1 = registry::run("activity/type1", in, ctx);
    auto t2 = registry::run("activity/type2", in, ctx);
    auto unw = registry::run("activity_unweighted/parallel", in, ctx);  // rank via forest depth
    size_t rank = static_cast<size_t>(pp::score_of(unw.value));
    row("activity (type 1)", "max #non-overlapping ending at x", rank, t1.stats.rounds,
        t1.stats.rounds == rank);
    row("activity (type 2)", "max #non-overlapping ending at x", rank, t2.stats.rounds,
        t2.stats.rounds == rank);
  }
  {  // unlimited knapsack: relaxed rank floor(W/w*)
    pp::knapsack_input kin;
    kin.items = pp::random_items(40, 25, 100, 50, 2);
    kin.capacity = 100'000;
    int64_t wstar = kin.items[0].weight;
    for (auto& it : kin.items) wstar = std::min(wstar, it.weight);
    auto par = registry::run("knapsack/parallel", pp::problem_input(kin), ctx);
    size_t rank = static_cast<size_t>(kin.capacity / wstar) + 1;
    row("unlimited knapsack", "floor(x / w*)  [relaxed]", rank, par.stats.rounds,
        par.stats.rounds == rank);
  }
  {  // Huffman: relaxed rank <= height
    pp::problem_input in =
        pp::huffman_input{pp::uniform_freqs(bench::scaled(200'000), 1000, 3)};
    auto par = registry::run("huffman/parallel", in, ctx);
    auto height = std::get<pp::huffman_result>(par.value).height;
    row("huffman tree", "subtree height  [relaxed <= H]", height, par.stats.rounds,
        par.stats.rounds <= 2 * (static_cast<size_t>(height) + 1));
  }
  {  // Dijkstra / SSSP: relaxed rank ceil(d(v)/w*)
    pp::sssp_input sin;
    auto g = pp::random_graph(static_cast<uint32_t>(bench::scaled(50'000)),
                              bench::scaled(400'000), 4);
    sin.g = pp::add_weights(g, 1u << 20, 1u << 23, 5);
    sin.source = 0;
    auto par = registry::run("sssp/phase_parallel", pp::problem_input(sin), ctx);
    const auto& dist = std::get<pp::sssp_result>(par.value).dist;
    int64_t maxd = 0;
    for (auto d : dist)
      if (d < pp::kInfDist) maxd = std::max(maxd, d);
    size_t rank = static_cast<size_t>(maxd / sin.g.min_weight()) + 1;
    row("dijkstra (delta=w*)", "ceil(d(x) / w*)  [relaxed]", rank, par.stats.rounds,
        par.stats.rounds <= rank);
  }
  {  // LIS: rank = LIS length ending at x
    pp::sequence_input sin;
    sin.a = pp::lis_segment_pattern(bench::scaled(200'000), 64, 6);
    auto par = registry::run("lis/parallel", pp::problem_input(sin), ctx);
    auto length = static_cast<size_t>(pp::score_of(par.value));
    row("LIS", "LIS length ending at x", length, par.stats.rounds, par.stats.rounds == length);
  }
  {  // MIS: rank = longest increasing-priority path; rounds of the
     //       round-based variant equal the max rank
    pp::graph_input gin;
    gin.g = pp::rmat_graph(static_cast<uint32_t>(bench::scaled(1u << 15)),
                           bench::scaled(1u << 18), 7);
    gin.vertex_priority = pp::random_permutation(gin.g.num_vertices(), 8);
    pp::problem_input in(std::move(gin));
    auto rounds = registry::run("mis/rounds", in, ctx);
    auto tas = registry::run("mis/tas", in, ctx);
    row("greedy MIS", "longest incr-priority chain to x", rounds.stats.rounds,
        rounds.stats.rounds,
        std::get<pp::mis_result>(tas.value).in_mis ==
            std::get<pp::mis_result>(rounds.value).in_mis);
  }
  {  // Whac-A-Mole: rank = most moles hit ending at x
    pp::problem_input in =
        pp::whac_input{pp::random_moles(bench::scaled(100'000), 1'000'000, 5'000, 9)};
    auto par = registry::run("whac/parallel", in, ctx);
    auto best = static_cast<size_t>(pp::score_of(par.value));
    row("whac-a-mole", "max moles hit ending at x", best, par.stats.rounds,
        par.stats.rounds == best);
  }
  std::printf("\nAll phase-parallel algorithms are round-efficient: rounds == rank(S)\n"
              "(or within the relaxed-rank bound where the paper uses relaxed ranks).\n");
  return 0;
}
