// Table 1: the paper's problem/rank/bounds table, verified empirically.
//
// For every problem we run the phase-parallel algorithm on an instance
// with a known (or measurable) rank and check that the number of parallel
// rounds equals the rank (exact-rank algorithms) or stays within the
// relaxed-rank bound. This is the "round-efficiency" column of the paper
// made executable.
#include <cstdio>

#include "algos/activity.h"
#include "algos/activity_unweighted.h"
#include "algos/huffman.h"
#include "algos/knapsack.h"
#include "algos/lis.h"
#include "algos/mis.h"
#include "algos/sssp.h"
#include "algos/whac.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace {
void row(const char* problem, const char* rank_def, size_t rank, size_t rounds, bool ok) {
  std::printf("%-22s %-42s %10zu %10zu %6s\n", problem, rank_def, rank, rounds,
              ok ? "OK" : "FAIL");
  if (!ok) std::exit(1);
}
}  // namespace

int main() {
  bench::banner("Table 1: rank definitions, measured rounds == rank", "Table 1, Sec. 3-5");
  std::printf("%-22s %-42s %10s %10s %6s\n", "problem", "rank(x)", "rank(S)", "rounds", "");

  {  // activity selection (Type 1 and Type 2): rank = max compatible chain
    auto acts = pp::random_activities(bench::scaled(200'000), 1'000'000, 2000, 500, 100, 1);
    auto t1 = pp::activity_select_type1(acts);
    auto t2 = pp::activity_select_type2(acts);
    auto unw = pp::activity_unweighted_parallel(acts);  // rank via pivot forest depth
    size_t rank = static_cast<size_t>(unw.best);
    row("activity (type 1)", "max #non-overlapping ending at x", rank, t1.stats.rounds,
        t1.stats.rounds == rank);
    row("activity (type 2)", "max #non-overlapping ending at x", rank, t2.stats.rounds,
        t2.stats.rounds == rank);
  }
  {  // unlimited knapsack: relaxed rank floor(W/w*)
    auto items = pp::random_items(40, 25, 100, 50, 2);
    int64_t W = 100'000;
    int64_t wstar = items[0].weight;
    for (auto& it : items) wstar = std::min(wstar, it.weight);
    auto par = pp::knapsack_parallel(W, items);
    size_t rank = static_cast<size_t>(W / wstar) + 1;
    row("unlimited knapsack", "floor(x / w*)  [relaxed]", rank, par.stats.rounds,
        par.stats.rounds == rank);
  }
  {  // Huffman: relaxed rank <= height
    auto freqs = pp::uniform_freqs(bench::scaled(200'000), 1000, 3);
    auto par = pp::huffman_parallel(freqs);
    row("huffman tree", "subtree height  [relaxed <= H]", par.height, par.stats.rounds,
        par.stats.rounds <= 2 * (par.height + 1));
  }
  {  // Dijkstra / SSSP: relaxed rank ceil(d(v)/w*)
    auto g = pp::random_graph(static_cast<uint32_t>(bench::scaled(50'000)),
                              bench::scaled(400'000), 4);
    auto wg = pp::add_weights(g, 1u << 20, 1u << 23, 5);
    auto par = pp::sssp_phase_parallel(wg, 0);
    int64_t maxd = 0;
    for (auto d : par.dist)
      if (d < pp::kInfDist) maxd = std::max(maxd, d);
    size_t rank = static_cast<size_t>(maxd / wg.min_weight()) + 1;
    row("dijkstra (delta=w*)", "ceil(d(x) / w*)  [relaxed]", rank, par.stats.rounds,
        par.stats.rounds <= rank);
  }
  {  // LIS: rank = LIS length ending at x
    auto a = pp::lis_segment_pattern(bench::scaled(200'000), 64, 6);
    auto par = pp::lis_parallel(a);
    row("LIS", "LIS length ending at x", static_cast<size_t>(par.length), par.stats.rounds,
        par.stats.rounds == static_cast<size_t>(par.length));
  }
  {  // MIS: rank = longest increasing-priority path; rounds of the
     //       round-based variant equal the max rank
    auto g = pp::rmat_graph(static_cast<uint32_t>(bench::scaled(1u << 15)),
                            bench::scaled(1u << 18), 7);
    auto prio = pp::random_permutation(g.num_vertices(), 8);
    auto rounds = pp::mis_rounds(g, prio);
    auto tas = pp::mis_tas(g, prio);
    row("greedy MIS", "longest incr-priority chain to x", rounds.stats.rounds,
        rounds.stats.rounds, tas.in_mis == rounds.in_mis);
  }
  {  // Whac-A-Mole: rank = most moles hit ending at x
    auto moles = pp::random_moles(bench::scaled(100'000), 1'000'000, 5'000, 9);
    auto par = pp::whac_parallel(moles);
    row("whac-a-mole", "max moles hit ending at x", static_cast<size_t>(par.best),
        par.stats.rounds, par.stats.rounds == static_cast<size_t>(par.best));
  }
  std::printf("\nAll phase-parallel algorithms are round-efficient: rounds == rank(S)\n"
              "(or within the relaxed-rank bound where the paper uses relaxed ranks).\n");
  return 0;
}
