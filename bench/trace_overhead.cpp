// trace_overhead: the disabled tracer must be free on the serving path.
//
// PR 8's serving numbers (bench/serving_cache, bench/serving_qos) were
// measured before any trace emission points existed; this bench asserts
// the instrumented build costs <2% on that same path with tracing off —
// i.e. that core/trace.h delivers its "disabled cost ~ one branch"
// contract where it matters.
//
// Three measurements:
//   1. per-span disabled cost: a tight loop constructing a trace_span
//      (tracer off) vs the identical loop without one — the delta, per
//      iteration, is the cost each emission point adds to a PR 8 binary.
//   2. spans per request: tracing ON, drive the engine and count how many
//      records one request emits end to end (run + lease + rounds +
//      engine points).
//   3. request latency: tracing OFF, closed-loop requests through the
//      engine (the serving path the PR 8 baselines measured).
//
// PASS/FAIL (asserted, exit code): cost1 x count2 < 2% of latency3. This
// bound is schedule-independent — it never compares two noisy end-to-end
// wall-clock runs against each other, so it cannot flake on a loaded CI
// box while still failing loudly if the disabled path ever grows a lock,
// an allocation, or a clock read.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/registry.h"
#include "core/trace.h"
#include "serve/engine.h"

namespace {

// Minimum wall-clock seconds of f() over `reps` runs.
template <typename F>
double min_time_s(int reps, F f) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    f();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

volatile uint64_t g_sink = 0;

pp::serve::engine_options serve_opts(const pp::context& base) {
  pp::serve::engine_options o;
  o.max_inflight_runs = 1;
  o.workers_per_run = 2;
  o.batch_window = std::chrono::microseconds(0);
  o.max_batch = 1;
  o.cache_entries = 0;  // every request takes the full execution path
  o.ctx = base;
  return o;
}

// One closed-loop pass of `n` requests with distinct seeds (no cache, no
// dedup: each request pays queue + lease + solve + demux).
void drive(pp::serve::engine& eng, const std::string& solver, const pp::problem_input& input,
           size_t n, uint64_t seed_base) {
  for (size_t i = 0; i < n; ++i) {
    pp::serve::request req;
    req.solver = solver;
    req.input = input;
    req.seed = seed_base + i;
    auto r = eng.submit(std::move(req)).get();
    if (!r.ok()) {
      std::fprintf(stderr, "trace_overhead: request failed: %s\n", r.error.c_str());
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::has_flag(argc, argv, "--json");
  pp::context base = bench::env_context().with_backend(pp::backend_kind::native);
  const std::string solver = "sssp/phase_parallel";
  const size_t input_n = std::max<size_t>(200, bench::scaled(2'000));
  auto input = pp::registry::instance().make_input(
      pp::registry::instance().info(solver)->problem, input_n, base.seed);

  if (!json)
    bench::banner("trace_overhead: disabled-tracer cost on the serving path (<2% asserted)",
                  "observability layer overhead bound (vs PR 8 serving baselines)", base);

  // 1. Disabled per-span cost. The sink keeps the loop body from folding
  // away; both loops share it, so the delta isolates the span.
  pp::trace::set_enabled(false);
  constexpr uint64_t kIters = 8'000'000;
  double plain_s = min_time_s(3, [] {
    for (uint64_t i = 0; i < kIters; ++i) g_sink = g_sink + i;
  });
  double span_s = min_time_s(3, [] {
    for (uint64_t i = 0; i < kIters; ++i) {
      pp::trace_span s("bench/disabled", "i", i);
      g_sink = g_sink + i;
    }
  });
  double per_span_ns = std::max(0.0, (span_s - plain_s) / static_cast<double>(kIters) * 1e9);

  // 2. Spans per request, tracing on.
  double spans_per_req;
  {
    pp::serve::engine eng(serve_opts(base));
    drive(eng, solver, input, 3, base.seed + 100);  // warm the pool cache
    pp::trace::set_enabled(true);
    pp::trace::clear();
    constexpr size_t kTracedReqs = 16;
    drive(eng, solver, input, kTracedReqs, base.seed + 200);
    spans_per_req =
        static_cast<double>(pp::trace::record_count()) / static_cast<double>(kTracedReqs);
    pp::trace::set_enabled(false);
    pp::trace::clear();
  }

  // 3. Request latency, tracing off (the PR 8 serving path).
  const size_t reqs = std::max<size_t>(20, bench::scaled(60));
  double off_s;
  {
    pp::serve::engine eng(serve_opts(base));
    drive(eng, solver, input, 3, base.seed + 300);
    off_s = min_time_s(std::max(2, bench::repeats()),
                       [&] { drive(eng, solver, input, reqs, base.seed + 400); }) /
            static_cast<double>(reqs);
  }

  double per_req_ns = off_s * 1e9;
  double overhead_pct = per_req_ns == 0.0 ? 0.0 : per_span_ns * spans_per_req / per_req_ns * 100.0;
  bool pass = overhead_pct < 2.0;

  if (json) {
    pp::json::writer w;
    bench::begin_envelope(w, "trace_overhead", {"solver", "pass"}, {});
    w.member("solver", solver);
    w.member("input_n", static_cast<uint64_t>(input_n));
    w.member("disabled_span_ns", per_span_ns);
    w.member("spans_per_request", spans_per_req);
    w.member("request_usec_tracing_off", per_req_ns / 1e3);
    w.member("overhead_pct", overhead_pct);
    w.member("pass", pass);
    w.key("rows").begin_array().end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("disabled span cost      %8.3f ns  (tight loop delta over %llu iters)\n",
                per_span_ns, static_cast<unsigned long long>(kIters));
    std::printf("spans per request       %8.1f     (tracing on, %s)\n", spans_per_req,
                solver.c_str());
    std::printf("request latency (off)   %8.1f us\n", per_req_ns / 1e3);
    std::printf("=> disabled-tracing overhead on the serving path: %.4f%% (bound: 2%%) -> %s\n",
                overhead_pct, pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
