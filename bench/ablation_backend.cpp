// Ablation: parallel runtime backend (native work-stealing vs OpenMP vs
// sequential) on the core primitives. The algorithms only use
// par_do/parallel_for, so this isolates the scheduler's contribution.
//
// Uses the context API: one pp::context per backend column, activated
// around the timed section, so the same lambda runs under each backend
// without touching process-global state.
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "core/context.h"
#include "parallel/primitives.h"
#include "parallel/random.h"
#include "parallel/sort.h"

namespace {

template <typename F>
void rowbench(const char* name, F f) {
  std::printf("%-18s", name);
  for (auto b : {pp::backend_kind::sequential, pp::backend_kind::openmp,
                 pp::backend_kind::native}) {
    pp::context ctx = bench::env_context().with_backend(b);
    pp::run_scope scope(ctx);  // activation + pool lease / warm-up outside the clock
    std::printf(" %10.3f", bench::time_s(f));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Ablation: scheduler backend on primitives", "Sec. 2 computational model",
                bench::env_context());
  size_t n = bench::scaled(20'000'000);
  std::printf("n = %zu\n\n%-18s %10s %10s %10s\n", n, "primitive", "seq(s)", "openmp(s)",
              "native(s)");

  std::vector<int64_t> xs(n);
  for (size_t i = 0; i < n; ++i) xs[i] = static_cast<int64_t>(pp::hash64(i) % 1000);

  rowbench("parallel_for", [&] {
    std::vector<int64_t> out(n);
    pp::parallel_for(0, n, [&](size_t i) { out[i] = xs[i] * 3 + 1; });
  });
  rowbench("reduce", [&] {
    volatile int64_t s = pp::reduce_add(std::span<const int64_t>(xs));
    (void)s;
  });
  rowbench("scan", [&] {
    auto copy = xs;
    pp::scan_exclusive_add(std::span<int64_t>(copy));
  });
  rowbench("pack", [&] {
    auto out = pp::pack(std::span<const int64_t>(xs), [&](size_t i) { return xs[i] % 3 == 0; });
  });
  rowbench("sort", [&] {
    auto copy = xs;
    pp::sort_inplace(std::span<int64_t>(copy));
  });
  std::printf("\nNative and OpenMP should be comparable; both beat sequential on\n"
              "multi-core machines for memory-light primitives.\n");
  return 0;
}
