// Shared helpers for the paper-reproduction benchmark binaries.
//
// Conventions:
//  * every binary prints one table per paper figure/table, with the same
//    rows/series the paper reports;
//  * REPRO_SCALE (float env var, default 1) multiplies the default input
//    sizes, so the same binaries run at laptop scale and at paper scale;
//  * REPRO_REPEATS (int env var, default 1) repeats timed sections and
//    reports the minimum;
//  * PP_BACKEND / PP_WORKERS / PP_SEED / PP_GRAIN configure the execution
//    context (see env_context()) without recompiling;
//  * "self-speedup" is measured by re-running the identical parallel code
//    under the sequential backend (1 worker), as the paper does with
//    1-core runs.
//  * benches with a committed baseline emit a --json envelope that embeds
//    `deterministic_top` / `deterministic_row` key lists, so the generic
//    checker (tools/bench_baseline_check.py) knows which fields are exact
//    across machines (counters, checksums, config echoes) and which are
//    environment noise (wall-clock) without a per-bench CI script.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <string>

#include "core/context.h"
#include "core/json.h"
#include "parallel/api.h"

namespace bench {

// True iff `flag` appears anywhere in argv (exact match).
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

// Open a baseline-comparable JSON envelope: the bench name plus the two
// key lists tools/bench_baseline_check.py drives the comparison from.
// `deterministic_top` names top-level members that must match the committed
// baseline exactly; `deterministic_row` names per-row members (of the
// "rows" array) that must. Everything else — wall-clock, rates — is
// reported but never compared. The caller appends its own members/rows and
// closes the object.
inline pp::json::writer& begin_envelope(pp::json::writer& w, const char* bench_name,
                                        std::initializer_list<const char*> deterministic_top,
                                        std::initializer_list<const char*> deterministic_row) {
  w.begin_object();
  w.member("bench", bench_name);
  w.key("deterministic_top").begin_array();
  for (const char* k : deterministic_top) w.value(k);
  w.end_array();
  w.key("deterministic_row").begin_array();
  for (const char* k : deterministic_row) w.value(k);
  w.end_array();
  return w;
}

inline double scale() {
  if (const char* s = std::getenv("REPRO_SCALE")) return std::atof(s);
  return 1.0;
}

inline size_t scaled(size_t n) { return static_cast<size_t>(static_cast<double>(n) * scale()); }

inline int repeats() {
  if (const char* s = std::getenv("REPRO_REPEATS")) return std::max(1, std::atoi(s));
  return 1;
}

// The execution context for this benchmark process: the library defaults,
// overridden by PP_BACKEND / PP_WORKERS / PP_SEED / PP_GRAIN env vars.
inline pp::context env_context() {
  pp::context c = pp::default_context();
  if (const char* b = std::getenv("PP_BACKEND")) {
    if (auto kind = pp::parse_backend(b)) c.backend = *kind;
  }
  if (const char* w = std::getenv("PP_WORKERS")) c.workers = static_cast<unsigned>(std::atoi(w));
  if (const char* s = std::getenv("PP_SEED")) c.seed = std::strtoull(s, nullptr, 10);
  if (const char* g = std::getenv("PP_GRAIN")) c.grain = std::strtoull(g, nullptr, 10);
  return c;
}

// Wall-clock seconds of f(), min over repeats().
template <typename F>
double time_s(F f) {
  double best = 1e100;
  for (int r = 0; r < repeats(); ++r) {
    auto t0 = std::chrono::steady_clock::now();
    f();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

inline void banner(const char* what, const char* paper_ref,
                   const pp::context& ctx = pp::current_context()) {
  std::printf("=============================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("backend=%s workers=%u seed=%llu scale=%.3g repeats=%d\n",
              std::string(pp::backend_name(ctx.backend)).c_str(), pp::num_workers(ctx),
              static_cast<unsigned long long>(ctx.seed), scale(), repeats());
  std::printf("=============================================================\n");
}

}  // namespace bench
