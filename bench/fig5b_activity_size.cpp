// Fig. 5(b): activity selection, fixed rank, running time vs input size.
//
// Paper setup: rank fixed at 45000, n from 1e8 to 2e9: the parallel
// algorithms grow almost linearly in n (bigger rounds = better
// parallelism), the sequential DP grows superlinearly (n log n).
//
// Here: rank target ~4500, n from 2.5e5 to 4e6 (scaled).
#include <cstdio>
#include <vector>

#include "algos/activity.h"
#include "bench_common.h"

int main() {
  bench::banner("Activity selection: time vs n (fixed rank)", "Fig. 5(b), Sec. 6.1");
  constexpr int64_t t_range = 1'000'000'000;
  constexpr double target_rank = 4500;
  double mean = static_cast<double>(t_range) / target_rank;
  std::printf("target rank ~%.0f\n\n", target_rank);
  std::printf("%10s %12s %10s %10s %10s %8s\n", "n", "rank(rounds)", "seq(s)", "type1(s)",
              "type2(s)", "spd_t1");
  for (size_t base : {250'000ull, 500'000ull, 1'000'000ull, 2'000'000ull, 4'000'000ull}) {
    size_t n = bench::scaled(base);
    auto acts = pp::random_activities(n, t_range, mean, mean / 4, 1u << 30, 7);
    pp::activity_result seq, t1, t2;
    double ts = bench::time_s([&] { seq = pp::activity_select_seq(acts); });
    double tt1 = bench::time_s([&] { t1 = pp::activity_select_type1(acts); });
    double tt2 = bench::time_s([&] { t2 = pp::activity_select_type2(acts); });
    if (t1.best != seq.best || t2.best != seq.best) {
      std::printf("MISMATCH!\n");
      return 1;
    }
    std::printf("%10zu %12zu %10.3f %10.3f %10.3f %8.2f\n", n, t1.stats.rounds, ts, tt1, tt2,
                ts / tt1);
  }
  std::printf("\nShape check vs paper: parallel time grows ~linearly with n,\n"
              "sequential grows superlinearly (n log n with cache effects).\n");
  return 0;
}
