// ablation_relaxed: phase barrier vs k-MultiQueue relaxed execution —
// speedup and wasted-work curves over workers x relaxation factor k.
//
// The paper's phase-parallel runners synchronize once per rank: every
// object of rank r finishes before any object of rank r+1 starts. On
// high-diameter / sparse-frontier inputs that is the whole cost — thousands
// of barriers guarding a handful of decisions each. The relaxed mode
// (parallel/multiqueue.h) drops the barrier and pays in wasted pops
// instead. This bench measures that trade on the two inputs it was built
// for:
//
//   sssp-grid   weighted 2D mesh (grid_graph + add_weights 1..8): the
//               delta-stepping phase solver pays ~(max dist / w*) barrier
//               rounds with small frontiers; relaxed Dijkstra streams the
//               same relaxations through the MultiQueue barrier-free
//               (distances stay exact — verified against sssp/dijkstra).
//   mis-path    path graph with identity vertex priorities: the greedy
//               dependence chain is sequential, so mis/rounds degenerates
//               to ~n rounds of a barrier guarding one decision — the
//               sparse-frontier worst case; mis/relaxed replaces every
//               barrier with best-of-two pops near the chain head (output
//               verified maximal + independent).
//
// Grid: phase vs relaxed at workers {1, 2, hw} and k in {1, 4, 16, 64};
// per-row wasted-work counters (popped/wasted, waste% = wasted/popped —
// the relaxation cost the k-axis buys throughput with).
//
// PASS/FAIL (asserted, exit code): at hw workers, the best-k relaxed run
// must beat the phase solver on BOTH inputs. Time is min over
// REPRO_REPEATS (default 3 here); REPRO_SCALE scales input sizes; PP_SEED
// the seed.
//
// --json emits the machine-readable envelope instead: the deterministic
// subset only (workers=1, k=1, one rep per scenario — a single MultiQueue
// worker pops in a seed-determined order, so popped/wasted are exact
// counters, not schedule noise), validity-gated but with NO perf
// assertion, so the committed BENCH_ablation_relaxed.json baseline can be
// checked on any loaded CI box via tools/bench_baseline_check.py.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "algos/mis.h"
#include "bench_common.h"
#include "core/registry.h"
#include "graph/generators.h"

namespace {

using pp::registry;

int env_repeats(int fallback) {
  if (std::getenv("REPRO_REPEATS") != nullptr) return bench::repeats();
  return fallback;
}

// min-over-repeats solver seconds (run_timed's measurement, input build
// excluded); the last run's envelope lands in *out for counter reporting.
double timed_run(const std::string& solver, const pp::problem_input& input,
                 const pp::context& ctx, int reps, pp::run_result<pp::solver_value>* out) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    auto res = registry::run(solver, input, ctx);
    if (res.status != pp::run_status::ok) {
      std::fprintf(stderr, "ablation_relaxed: %s failed\n", solver.c_str());
      std::exit(1);
    }
    best = std::min(best, res.seconds);
    *out = std::move(res);
  }
  return best;
}

pp::problem_input make_grid_sssp(pp::vertex_t side, uint64_t seed) {
  pp::sssp_input in;
  in.g = pp::add_weights(pp::grid_graph(side, side), 1, 8, seed);
  in.source = 0;
  return in;
}

pp::problem_input make_path_mis(pp::vertex_t n) {
  std::vector<pp::edge> edges;
  edges.reserve(n - 1);
  for (pp::vertex_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  pp::graph_input in;
  in.g = pp::graph::from_edges(n, std::move(edges));
  // Identity priorities chain every vertex behind its left neighbor: the
  // greedy order has zero rank-parallelism, the worst case for barriers.
  in.vertex_priority.resize(n);
  for (pp::vertex_t i = 0; i < n; ++i) in.vertex_priority[i] = i;
  in.edge_priority.resize(in.g.num_edges());
  for (size_t i = 0; i < in.edge_priority.size(); ++i)
    in.edge_priority[i] = static_cast<uint32_t>(i);
  return in;
}

struct scenario {
  const char* name;
  const char* phase_solver;
  const char* relaxed_solver;
  pp::problem_input input;
  // Structural validation of one relaxed result (exactness for SSSP).
  bool (*valid)(const pp::problem_input&, const pp::solver_value&, int64_t ref_score);
};

bool valid_sssp(const pp::problem_input&, const pp::solver_value& v, int64_t ref_score) {
  // Relaxed Dijkstra is exact, and the score is a checksum over all
  // distances — equality with sequential Dijkstra is full verification.
  return pp::score_of(v) == ref_score;
}

bool valid_mis(const pp::problem_input& input, const pp::solver_value& v, int64_t) {
  const auto* in = std::get_if<pp::graph_input>(&input);
  const auto* r = std::get_if<pp::mis_result>(&v);
  return in != nullptr && r != nullptr && pp::is_maximal_independent_set(in->g, r->in_mis);
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::has_flag(argc, argv, "--json");
  pp::context base = bench::env_context().with_backend(pp::backend_kind::native);
  const int reps = env_repeats(3);
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<unsigned> worker_counts{1, 2, hw};
  if (hw <= 2) worker_counts = {1, 2};
  const unsigned ks[] = {1, 4, 16, 64};

  const pp::vertex_t grid_side =
      static_cast<pp::vertex_t>(std::max<size_t>(32, bench::scaled(220)));
  const pp::vertex_t path_n =
      static_cast<pp::vertex_t>(std::max<size_t>(1'000, bench::scaled(12'000)));

  if (!json)
    bench::banner("ablation_relaxed: phase barrier vs k-MultiQueue (speedup + wasted work)",
                  "relaxed-scheduler extension (Alistarh et al.) over Sec. 4 phase solvers",
                  base);

  scenario scenarios[] = {
      {"sssp-grid", "sssp/phase_parallel", "sssp/relaxed",
       make_grid_sssp(grid_side, base.seed + 17), valid_sssp},
      {"mis-path", "mis/rounds", "mis/relaxed", make_path_mis(path_n), valid_mis},
  };

  auto ref_score_of = [&](const scenario& sc) -> int64_t {
    if (sc.name != std::string("sssp-grid")) return 0;
    auto ref = registry::run(
        "sssp/dijkstra", sc.input,
        pp::context{}.with_backend(pp::backend_kind::sequential).with_seed(base.seed));
    return pp::score_of(ref.value);
  };

  if (json) {
    // Deterministic subset: one MultiQueue worker at k=1 pops in a
    // seed-determined order, so popped/wasted are exact counters the
    // committed baseline can pin. No perf assertion here — validity only.
    bool pass = true;
    pp::json::writer w;
    bench::begin_envelope(w, "ablation_relaxed",
                          {"grid_side", "path_n", "seed", "pass"},
                          {"scenario", "relaxed_solver", "workers", "k", "popped", "wasted",
                           "valid"});
    w.member("grid_side", static_cast<uint64_t>(grid_side));
    w.member("path_n", static_cast<uint64_t>(path_n));
    w.member("seed", base.seed);
    w.key("rows").begin_array();
    bool all_valid = true;
    for (auto& sc : scenarios) {
      int64_t ref_score = ref_score_of(sc);
      pp::context ctx = base.with_workers(1).with_relax_k(1);
      pp::run_result<pp::solver_value> pres, rres;
      double phase_s = timed_run(sc.phase_solver, sc.input, ctx, 1, &pres);
      double rel_s = timed_run(sc.relaxed_solver, sc.input, ctx, 1, &rres);
      bool valid = sc.valid(sc.input, rres.value, ref_score);
      all_valid = all_valid && valid;
      w.begin_object();
      w.member("scenario", sc.name);
      w.member("relaxed_solver", sc.relaxed_solver);
      w.member("workers", uint64_t{1});
      w.member("k", uint64_t{1});
      w.member("popped", static_cast<uint64_t>(rres.stats.popped));
      w.member("wasted", static_cast<uint64_t>(rres.stats.wasted));
      w.member("valid", valid);
      w.member("phase_seconds", phase_s);
      w.member("relaxed_seconds", rel_s);
      w.end_object();
    }
    w.end_array();
    pass = all_valid;
    w.member("pass", pass);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return pass ? 0 : 1;
  }

  bool pass = true;
  for (auto& sc : scenarios) {
    int64_t ref_score = ref_score_of(sc);
    std::printf("\n-- %s (grid side %u / path n %u) --\n", sc.name, grid_side, path_n);
    std::printf("%-8s %-20s %4s %10s %8s %11s %11s %8s\n", "workers", "solver", "k", "time_ms",
                "speedup", "popped", "wasted", "waste%");

    double phase_at_hw = 0.0, best_relaxed_at_hw = 1e100;
    for (unsigned w : worker_counts) {
      pp::context ctx = base.with_workers(w);
      pp::run_result<pp::solver_value> res;
      double phase_s = timed_run(sc.phase_solver, sc.input, ctx, reps, &res);
      if (w == hw) phase_at_hw = phase_s;
      std::printf("%-8u %-20s %4s %10.2f %7.2fx %11s %11s %8s\n", w, sc.phase_solver, "-",
                  phase_s * 1e3, 1.0, "-", "-", "-");
      for (unsigned k : ks) {
        pp::run_result<pp::solver_value> rres;
        double rel_s = timed_run(sc.relaxed_solver, sc.input, ctx.with_relax_k(k), reps, &rres);
        if (!sc.valid(sc.input, rres.value, ref_score)) {
          std::printf("ablation_relaxed: %s INVALID OUTPUT at workers=%u k=%u\n",
                      sc.relaxed_solver, w, k);
          pass = false;
        }
        if (w == hw) best_relaxed_at_hw = std::min(best_relaxed_at_hw, rel_s);
        std::printf("%-8u %-20s %4u %10.2f %7.2fx %11zu %11zu %7.1f%%\n", w, sc.relaxed_solver,
                    k, rel_s * 1e3, phase_s / rel_s, rres.stats.popped, rres.stats.wasted,
                    rres.stats.popped == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(rres.stats.wasted) /
                              static_cast<double>(rres.stats.popped));
      }
    }
    bool beat = best_relaxed_at_hw < phase_at_hw;
    std::printf("%s: best relaxed %.2f ms vs phase %.2f ms at %u workers -> %s\n", sc.name,
                best_relaxed_at_hw * 1e3, phase_at_hw * 1e3, hw,
                beat ? "relaxed wins" : "phase wins");
    pass = pass && beat;
  }

  std::printf("\nrelaxed beats phase at %u workers on both inputs -> %s\n", hw,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
