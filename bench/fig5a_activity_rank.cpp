// Fig. 5(a): activity selection, fixed n, running time vs input rank.
//
// Paper setup: n = 1e9 activities, truncated-normal durations tuned to
// sweep the rank from ~1e2 to ~4e6 on 96 cores; Type 1 and Type 2 behave
// almost identically and beat the classic sequential DP up to rank ~4e6,
// while the sequential algorithm gets *faster* as rank grows (cache
// locality of its range queries).
//
// Here: n defaults to 2e6 (REPRO_SCALE to adjust); we sweep the mean
// activity duration to produce the rank series and report all four
// implementations.
#include <cstdio>
#include <vector>

#include "algos/activity.h"
#include "bench_common.h"

int main() {
  bench::banner("Activity selection: time vs rank (fixed n)", "Fig. 5(a), Sec. 6.1");
  size_t n = bench::scaled(2'000'000);
  constexpr int64_t t_range = 1'000'000'000;
  std::printf("n = %zu activities, time range [0, %lld)\n\n", n, (long long)t_range);
  std::printf("%12s %12s %10s %10s %10s %10s %8s %8s\n", "target_rank", "rank(rounds)",
              "seq(s)", "type1(s)", "type1f(s)", "type2(s)", "spd_t1", "spd_t2");
  for (double target : {1e2, 1e3, 1e4, 1e5, 1e6}) {
    double mean = static_cast<double>(t_range) / target;
    auto acts = pp::random_activities(n, t_range, mean, mean / 4, 1u << 30, 42);
    pp::activity_result t1, t1f, t2, seq;
    double ts = bench::time_s([&] { seq = pp::activity_select_seq(acts); });
    double tt1 = bench::time_s([&] { t1 = pp::activity_select_type1(acts); });
    double tt1f = bench::time_s([&] { t1f = pp::activity_select_type1_flat(acts); });
    double tt2 = bench::time_s([&] { t2 = pp::activity_select_type2(acts); });
    if (t1.best != seq.best || t2.best != seq.best || t1f.best != seq.best) {
      std::printf("MISMATCH!\n");
      return 1;
    }
    std::printf("%12.0f %12zu %10.3f %10.3f %10.3f %10.3f %8.2f %8.2f\n", target,
                t1.stats.rounds, ts, tt1, tt1f, tt2, ts / tt1, ts / tt2);
  }
  std::printf("\nShape check vs paper: parallel time grows with rank; Type1 ~ Type2;\n"
              "sequential time mildly improves with rank. The paper's crossover (parallel\n"
              "wins up to rank ~4e6) needs its 96 cores; on few workers the sequential\n"
              "DP stays ahead (the flat Type-1 variant is within ~2x of it).\n");
  return 0;
}
