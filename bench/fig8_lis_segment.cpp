// Fig. 8 + Table 2 (top): LIS on the *segment* pattern — k roughly
// decreasing runs with increasing bases, so the LIS size is ~k.
//
// Paper setup: n = 1e8 on 96 cores; parallel wins up to output size ~300,
// then the O(log^2 n) work overhead dominates; average wake-ups 1.7-3.9.
#include "lis_bench.h"

int main() {
  bench::banner("LIS, segment pattern: Table-2 columns vs output size",
                "Fig. 8 + Table 2, Sec. 6.4");
  size_t n = bench::scaled(500'000);
  bench::lis_table(
      "segment", [](size_t nn, size_t k) { return pp::lis_segment_pattern(nn, k, 19); }, n,
      {3, 10, 30, 100, 300, 1000, 3000});
  return 0;
}
