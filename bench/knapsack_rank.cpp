// Unlimited knapsack: time vs rank (= W / w*), sequential vs phase-
// parallel windows (Theorem 4.3). Smaller w* = more rounds = less
// parallelism per round.
#include <cstdio>

#include "algos/knapsack.h"
#include "bench_common.h"

int main() {
  bench::banner("Unlimited knapsack: time vs rank (= W/w*)", "Sec. 4.2, Theorem 4.3");
  int64_t W = static_cast<int64_t>(bench::scaled(2'000'000));
  constexpr size_t n_items = 64;
  std::printf("W = %lld, %zu items\n\n", (long long)W, n_items);
  std::printf("%10s %10s %10s %10s %8s\n", "w*", "rank", "seq(s)", "par(s)", "spdup");
  for (int64_t wstar : {100'000ll, 10'000ll, 1'000ll, 100ll}) {
    auto items = pp::random_items(n_items, wstar, wstar * 4, 1'000'000, 7);
    pp::knapsack_result seq, par;
    double ts = bench::time_s([&] { seq = pp::knapsack_seq(W, items); });
    double tp = bench::time_s([&] { par = pp::knapsack_parallel(W, items); });
    if (seq.dp != par.dp) {
      std::printf("MISMATCH!\n");
      return 1;
    }
    std::printf("%10lld %10zu %10.3f %10.3f %8.2f\n", (long long)wstar, par.stats.rounds, ts,
                tp, ts / tp);
  }
  std::printf("\nShape check: speedup shrinks as rank grows (windows get narrower).\n");
  return 0;
}
