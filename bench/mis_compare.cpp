// MIS: the Sec. 5.3 claim made measurable. The TAS-tree algorithm does
// O(m) work with O(log n log dmax) span; the round-based baseline does
// O(rounds * m) readiness work. We report times, the baseline's round
// count (~log n), and the TAS wake-chain depth (the span proxy), on the
// three graph families.
#include <cmath>
#include <cstdio>

#include "algos/coloring.h"
#include "algos/matching.h"
#include "algos/mis.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "parallel/random.h"

int main() {
  bench::banner("Greedy MIS: sequential vs round-based vs TAS-tree (Algorithm 4)",
                "Sec. 5.3 claim (work-efficiency + span)");
  std::printf("%-12s %10s %12s | %8s %10s %10s | %8s %10s %12s\n", "graph", "n", "m", "seq(s)",
              "rounds(s)", "tas(s)", "#rounds", "wakedepth", "log n log d");
  struct G {
    const char* name;
    pp::graph g;
  } graphs[] = {
      {"rmat", pp::rmat_graph(static_cast<uint32_t>(bench::scaled(1u << 17)),
                              bench::scaled(1u << 21), 1)},
      {"random", pp::random_graph(static_cast<uint32_t>(bench::scaled(1u << 17)),
                                  bench::scaled(1u << 21), 2)},
      {"grid", pp::grid_graph(static_cast<uint32_t>(bench::scaled(500)),
                              static_cast<uint32_t>(bench::scaled(500)))},
  };
  for (auto& [name, g] : graphs) {
    auto prio = pp::random_permutation(g.num_vertices(), 42);
    pp::mis_result seq, rounds, tas;
    double ts = bench::time_s([&] { seq = pp::mis_sequential(g, prio); });
    double tr = bench::time_s([&] { rounds = pp::mis_rounds(g, prio); });
    double tt = bench::time_s([&] { tas = pp::mis_tas(g, prio); });
    if (rounds.in_mis != seq.in_mis || tas.in_mis != seq.in_mis) {
      std::printf("MIS MISMATCH!\n");
      return 1;
    }
    double bound = std::log2(static_cast<double>(g.num_vertices())) *
                   std::log2(static_cast<double>(g.max_degree()) + 2);
    std::printf("%-12s %10u %12zu | %8.3f %10.3f %10.3f | %8zu %10zu %12.1f\n", name,
                g.num_vertices(), g.num_edges(), ts, tr, tt, rounds.stats.rounds,
                tas.stats.substeps, bound);
  }
  std::printf("\nShape check vs paper: all three agree on the MIS; the TAS version's\n"
              "wake-chain depth tracks O(log n); round-based pays ~rounds x m work.\n");

  // Same wake-up machinery for the other Sec. 5.3 greedy algorithms.
  std::printf("\n%-12s | %10s %10s %8s | %10s %10s %8s\n", "graph", "colseq(s)", "coltas(s)",
              "#colors", "matseq(s)", "matpar(s)", "#rounds");
  for (auto& [name, g] : graphs) {
    auto prio = pp::random_permutation(g.num_vertices(), 43);
    auto eprio = pp::random_permutation(g.num_edges(), 44);
    pp::coloring_result cs, ct;
    pp::matching_result ms, mp;
    double tcs = bench::time_s([&] { cs = pp::coloring_sequential(g, prio); });
    double tct = bench::time_s([&] { ct = pp::coloring_tas(g, prio); });
    double tms = bench::time_s([&] { ms = pp::matching_sequential(g, eprio); });
    double tmp = bench::time_s([&] { mp = pp::matching_rounds(g, eprio); });
    if (ct.color != cs.color || mp.partner != ms.partner) {
      std::printf("COLORING/MATCHING MISMATCH!\n");
      return 1;
    }
    std::printf("%-12s | %10.3f %10.3f %8u | %10.3f %10.3f %8zu\n", name, tcs, tct,
                ct.num_colors, tms, tmp, mp.stats.rounds);
  }
  std::printf("\nColoring and matching reuse the TAS/round wake-ups and return exactly\n"
              "the sequential greedy results (Jones-Plassmann order).\n");
  return 0;
}
