// MIS: the Sec. 5.3 claim made measurable. The TAS-tree algorithm does
// O(m) work with O(log n log dmax) span; the round-based baseline does
// O(rounds * m) readiness work. We report times, the baseline's round
// count (~log n), and the TAS wake-chain depth (the span proxy), on the
// three graph families.
//
// All solvers dispatch through pp::registry::run on one graph_input per
// family; times come from the run_result envelope (min over
// REPRO_REPEATS).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/registry.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace {

// Min-over-repeats run of one registry solver on one input.
pp::run_result<pp::solver_value> timed_run(const char* solver, const pp::problem_input& in,
                                           const pp::context& ctx) {
  auto best = pp::registry::run(solver, in, ctx);
  for (int r = 1; r < bench::repeats(); ++r) {
    auto res = pp::registry::run(solver, in, ctx);
    if (res.seconds < best.seconds) best = std::move(res);
  }
  return best;
}

}  // namespace

int main() {
  const pp::context ctx = bench::env_context();
  bench::banner("Greedy MIS: sequential vs round-based vs TAS-tree (Algorithm 4)",
                "Sec. 5.3 claim (work-efficiency + span)", ctx);
  std::printf("%-12s %10s %12s | %8s %10s %10s | %8s %10s %12s\n", "graph", "n", "m", "seq(s)",
              "rounds(s)", "tas(s)", "#rounds", "wakedepth", "log n log d");
  struct G {
    const char* name;
    pp::graph g;
  } graphs[] = {
      {"rmat", pp::rmat_graph(static_cast<uint32_t>(bench::scaled(1u << 17)),
                              bench::scaled(1u << 21), 1)},
      {"random", pp::random_graph(static_cast<uint32_t>(bench::scaled(1u << 17)),
                                  bench::scaled(1u << 21), 2)},
      {"grid", pp::grid_graph(static_cast<uint32_t>(bench::scaled(500)),
                              static_cast<uint32_t>(bench::scaled(500)))},
  };
  for (auto& [name, g] : graphs) {
    pp::graph_input gin;
    gin.g = g;
    gin.vertex_priority = pp::random_permutation(g.num_vertices(), 42);
    pp::problem_input in(std::move(gin));
    auto seq = timed_run("mis/sequential", in, ctx);
    auto rounds = timed_run("mis/rounds", in, ctx);
    auto tas = timed_run("mis/tas", in, ctx);
    const auto& seq_mis = std::get<pp::mis_result>(seq.value);
    if (std::get<pp::mis_result>(rounds.value).in_mis != seq_mis.in_mis ||
        std::get<pp::mis_result>(tas.value).in_mis != seq_mis.in_mis) {
      std::printf("MIS MISMATCH!\n");
      return 1;
    }
    double bound = std::log2(static_cast<double>(g.num_vertices())) *
                   std::log2(static_cast<double>(g.max_degree()) + 2);
    std::printf("%-12s %10u %12zu | %8.3f %10.3f %10.3f | %8zu %10zu %12.1f\n", name,
                g.num_vertices(), g.num_edges(), seq.seconds, rounds.seconds, tas.seconds,
                rounds.stats.rounds, tas.stats.substeps, bound);
  }
  std::printf("\nShape check vs paper: all three agree on the MIS; the TAS version's\n"
              "wake-chain depth tracks O(log n); round-based pays ~rounds x m work.\n");

  // Same wake-up machinery for the other Sec. 5.3 greedy algorithms.
  std::printf("\n%-12s | %10s %10s %8s | %10s %10s %8s\n", "graph", "colseq(s)", "coltas(s)",
              "#colors", "matseq(s)", "matpar(s)", "#rounds");
  for (auto& [name, g] : graphs) {
    pp::graph_input gin;
    gin.g = g;
    gin.vertex_priority = pp::random_permutation(g.num_vertices(), 43);
    gin.edge_priority = pp::random_permutation(g.num_edges(), 44);
    pp::problem_input in(std::move(gin));
    auto cs = timed_run("coloring/sequential", in, ctx);
    auto ct = timed_run("coloring/tas", in, ctx);
    auto ms = timed_run("matching/sequential", in, ctx);
    auto mp = timed_run("matching/rounds", in, ctx);
    if (std::get<pp::coloring_result>(ct.value).color !=
            std::get<pp::coloring_result>(cs.value).color ||
        std::get<pp::matching_result>(mp.value).partner !=
            std::get<pp::matching_result>(ms.value).partner) {
      std::printf("COLORING/MATCHING MISMATCH!\n");
      return 1;
    }
    std::printf("%-12s | %10.3f %10.3f %8u | %10.3f %10.3f %8zu\n", name, cs.seconds,
                ct.seconds, std::get<pp::coloring_result>(ct.value).num_colors, ms.seconds,
                mp.seconds, mp.stats.rounds);
  }
  std::printf("\nColoring and matching reuse the TAS/round wake-ups and return exactly\n"
              "the sequential greedy results (Jones-Plassmann order).\n");
  return 0;
}
