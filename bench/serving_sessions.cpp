// serving_sessions: delta-update latency vs full re-solve on a versioned
// session (src/serve/session.h) — the crossover the session store exists
// to win.
//
// One 200k-vertex SSSP instance lives in a session_table. Each round
// applies a K-edge insertion delta (weight-1 edges, so the prior solve's
// labels stay valid upper bounds) and re-solves two ways against the SAME
// pinned snapshot:
//
//   incremental   apply(delta) + sssp/incremental seeded with the prior
//                 version's distances and the inserted edges — the session
//                 serving path (delta install cost included in its latency)
//   from-scratch  sssp/dijkstra on the identical snapshot — what a
//                 stateless daemon pays for every update
//
// Exactness is non-negotiable: the two distance vectors must be
// BIT-IDENTICAL (tests/checkers.h's sssp_distances_equal) every round, so
// the speedup column is a pure cost statement, never an accuracy trade.
// The invariant gate also asserts the headline acceptance: a 64-edge delta
// re-solves >= 5x faster than from-scratch (the real margin is orders of
// magnitude — 64 relaxation seeds vs ~1.6M-edge Dijkstra).
//
// Output: a human table, or with --json a single JSON envelope whose
// deterministic_top / deterministic_row lists tell the generic checker
// (tools/bench_baseline_check.py) which fields the committed baseline
// BENCH_serving_sessions.json locks in CI (versions, fingerprints, edge
// counts, distance checksums, pass — NOT wall-clock). Regenerate with
// `bench/serving_sessions --json > BENCH_serving_sessions.json` after an
// intentional change.
//
// Env: REPRO_SCALE scales the instance, PP_SEED the base seed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "../tests/checkers.h"
#include "bench_common.h"
#include "core/json.h"
#include "core/registry.h"
#include "serve/session.h"

namespace {

constexpr size_t kDeltaSizes[] = {1, 8, 64, 512};

struct row {
  size_t delta_edges = 0;
  uint64_t version = 0;
  size_t elems = 0;            // directed edges after the delta
  std::string fingerprint;     // the version's content address
  int64_t dist_checksum = 0;   // sum of the exact distances
  bool bit_identical = false;  // incremental == from-scratch, elementwise
  bool hints = false;          // the snapshot carried prior labels
  double apply_s = 0.0;
  double inc_s = 0.0;
  double scratch_s = 0.0;
  double speedup = 0.0;  // scratch / (apply + incremental)
};

// Deterministic weight-1 insertions, disjoint across rounds. Weight 1 can
// only ever decrease an existing edge (or tie, a no-op), so the session's
// incremental labels stay valid for every round.
std::vector<pp::wgraph::wedge> make_delta(size_t count, size_t round, pp::vertex_t n) {
  std::vector<pp::wgraph::wedge> e;
  for (size_t i = 0; i < count; ++i) {
    uint64_t h = (round * 100'003 + i + 1) * 2'654'435'761ULL;
    auto u = static_cast<pp::vertex_t>(h % n);
    auto v = static_cast<pp::vertex_t>((h >> 20) % n);
    if (v == u) v = (v + 1) % n;
    e.push_back({u, v, 1});
  }
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = bench::has_flag(argc, argv, "--json");
  pp::context ctx = bench::env_context().with_backend(pp::backend_kind::native);
  const size_t n = bench::scaled(200'000);

  if (!json) {
    bench::banner("serving_sessions: K-edge delta + incremental re-solve vs from-scratch",
                  "serving extension (versioned sessions over Shen et al. solvers)", ctx);
  }

  pp::serve::session_table tab(/*max_sessions=*/4);
  auto t0 = std::chrono::steady_clock::now();
  tab.create("g", pp::registry::instance().make_input("sssp", n, ctx.seed + 1));
  double create_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Warm start: one from-scratch solve of version 0 feeds the labels every
  // incremental round builds on (exactly what ppserve's solve verb does).
  pp::snapshot_input v0 = tab.snapshot("g");
  t0 = std::chrono::steady_clock::now();
  auto base = pp::registry::run("sssp/dijkstra", v0, ctx);
  double base_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto* base_dist = std::get_if<pp::sssp_result>(&base.value);
  tab.note_solve("g", v0.version, base_dist->dist);
  int64_t base_checksum = 0;
  for (int64_t d : base_dist->dist) base_checksum += d;

  if (!json) {
    std::printf("n=%zu  edges=%zu  create=%.1fms  from-scratch v0=%.1fms\n\n", n,
                tab.describe("g").elems, create_s * 1e3, base_s * 1e3);
    std::printf("%7s %8s %9s %9s %11s %9s %10s\n", "K", "version", "apply_ms", "inc_ms",
                "scratch_ms", "speedup", "identical");
  }

  std::vector<row> rows;
  bool pass = true;
  size_t round = 0;
  for (size_t k : kDeltaSizes) {
    pp::serve::session_delta d;
    d.add_edges = make_delta(k, round++, static_cast<pp::vertex_t>(n));

    row r;
    r.delta_edges = k;
    t0 = std::chrono::steady_clock::now();
    pp::serve::session_desc desc = tab.apply("g", d);
    r.apply_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    r.version = desc.version;
    r.elems = desc.elems;
    r.fingerprint = desc.fp.hex();
    r.hints = desc.hints;

    pp::snapshot_input pin = tab.snapshot("g");
    t0 = std::chrono::steady_clock::now();
    auto inc = pp::registry::run("sssp/incremental", pin, ctx);
    r.inc_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    t0 = std::chrono::steady_clock::now();
    auto ref = pp::registry::run("sssp/dijkstra", pin, ctx);
    r.scratch_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    const auto& inc_d = std::get<pp::sssp_result>(inc.value).dist;
    const auto& ref_d = std::get<pp::sssp_result>(ref.value).dist;
    r.bit_identical = pp_check::sssp_distances_equal(inc_d, ref_d);
    for (int64_t dd : ref_d) r.dist_checksum += dd;
    r.speedup = r.scratch_s / (r.apply_s + r.inc_s);

    // The gates: exact always; hints present always (weight-1 inserts
    // never invalidate); and the headline acceptance — a 64-edge delta
    // re-solves >= 5x faster than from-scratch. Smaller/larger K rows are
    // the crossover curve: reported, not gated (a single low-weight edge
    // landing near the source can legitimately re-settle a large subtree).
    pass = pass && r.bit_identical && r.hints && pin.prior_dist != nullptr;
    if (k == 64) pass = pass && r.speedup >= 5.0;

    tab.note_solve("g", desc.version, ref_d);  // fresh labels for the next round
    if (!json) {
      std::printf("%7zu %8llu %9.2f %9.2f %11.2f %8.1fx %10s\n", k,
                  static_cast<unsigned long long>(r.version), r.apply_s * 1e3, r.inc_s * 1e3,
                  r.scratch_s * 1e3, r.speedup, r.bit_identical ? "yes" : "NO");
    }
    rows.push_back(std::move(r));
  }

  if (json) {
    pp::json::writer w;
    bench::begin_envelope(w, "serving_sessions", {"n", "base_checksum", "pass"},
                          {"delta_edges", "version", "elems", "fingerprint", "dist_checksum",
                           "bit_identical", "hints"});
    w.member("n", static_cast<uint64_t>(n));
    w.member("base_checksum", base_checksum);
    w.member("pass", pass);
    w.member("create_seconds", create_s);
    w.member("scratch_v0_seconds", base_s);
    w.key("rows").begin_array();
    for (const auto& r : rows) {
      w.begin_object();
      w.member("delta_edges", static_cast<uint64_t>(r.delta_edges));
      w.member("version", r.version).member("elems", static_cast<uint64_t>(r.elems));
      w.member("fingerprint", r.fingerprint);
      w.member("dist_checksum", r.dist_checksum);
      w.member("bit_identical", r.bit_identical).member("hints", r.hints);
      // Timing is environment-dependent — reported, never baseline-compared.
      w.member("apply_seconds", r.apply_s).member("incremental_seconds", r.inc_s);
      w.member("scratch_seconds", r.scratch_s).member("speedup", r.speedup);
      w.end_object();
    }
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("\ninvariants (bit-identical distances, hints live, >=5x at K=64) -> %s\n",
                pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
