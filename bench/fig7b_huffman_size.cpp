// Fig. 7(b): Huffman construction, time vs input size for three input
// distributions, parallel vs the sequential two-queue algorithm.
//
// Paper setup: n = 1e5..1e9, max frequency 1000; on large inputs the
// parallel version wins 10-20x (96 cores). At 2 cores the win is bounded
// by the core count; the shape (parallel scales linearly, gap grows with
// n) is what we check.
#include <cstdio>

#include "algos/huffman.h"
#include "bench_common.h"

int main() {
  bench::banner("Huffman: time vs input size, 3 distributions", "Fig. 7(b), Sec. 6.2");
  std::printf("%10s %-13s %10s %10s %8s %8s\n", "n", "distribution", "seq(s)", "par(s)",
              "spdup", "rounds");
  for (size_t base : {100'000ull, 400'000ull, 1'600'000ull, 6'400'000ull}) {
    size_t n = bench::scaled(base);
    struct Gen {
      const char* name;
      std::vector<uint64_t> freqs;
    } gens[] = {
        {"uniform", pp::uniform_freqs(n, 1000, 1)},
        {"exponential", pp::exponential_freqs(n, 1e-2, 1000, 2)},
        {"zipf", pp::zipf_freqs(n, 1.0, 1u << 20, 3)},
    };
    for (auto& g : gens) {
      pp::huffman_result s, p;
      double ts = bench::time_s([&] { s = pp::huffman_seq(g.freqs); });
      double tp = bench::time_s([&] { p = pp::huffman_parallel(g.freqs); });
      if (s.wpl != p.wpl) {
        std::printf("WPL MISMATCH!\n");
        return 1;
      }
      std::printf("%10zu %-13s %10.3f %10.3f %8.2f %8zu\n", n, g.name, ts, tp, ts / tp,
                  p.stats.rounds);
    }
  }
  std::printf("\nShape check vs paper: similar times across distributions; parallel\n"
              "advantage grows with n (bounded by the 2 cores of this machine).\n");
  return 0;
}
