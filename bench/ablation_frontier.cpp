// Ablation: PA-BST frontier extraction (Algorithm 2 verbatim) vs the flat
// sorted-array + suffix-min + atomic-Fenwick variant of Type-1 activity
// selection. Mirrors the paper's footnote 5: practical SSSP codes use flat
// arrays over trees for cache locality; the same effect shows here.
#include <cstdio>

#include "algos/activity.h"
#include "bench_common.h"

int main() {
  bench::banner("Ablation: activity selection frontier structure (PA-BST vs flat)",
                "Sec. 6.1 / footnote 5");
  size_t n = bench::scaled(1'000'000);
  constexpr int64_t t_range = 1'000'000'000;
  std::printf("n = %zu\n\n", n);
  std::printf("%12s %10s | %12s %12s %8s\n", "rank", "rounds", "pabst(s)", "flat(s)",
              "flat-adv");
  for (double target : {1e2, 1e3, 1e4, 1e5}) {
    double mean = static_cast<double>(t_range) / target;
    auto acts = pp::random_activities(n, t_range, mean, mean / 4, 1000, 3);
    pp::activity_result tree, flat;
    double tt = bench::time_s([&] { tree = pp::activity_select_type1(acts); });
    double tf = bench::time_s([&] { flat = pp::activity_select_type1_flat(acts); });
    if (tree.dp != flat.dp) {
      std::printf("MISMATCH!\n");
      return 1;
    }
    std::printf("%12zu %10zu | %12.3f %12.3f %8.2fx\n", tree.stats.rounds, tree.stats.rounds,
                tt, tf, tt / tf);
  }
  std::printf("\nBoth are the same algorithm with different frontier substrates; the\n"
              "flat variant wins on cache locality (cf. footnote 5 in the paper).\n");
  return 0;
}
