// serving_batch: per-item dispatch overhead of registry::run_batch vs a
// loop of registry::run, across batch sizes {1, 16, 256} x backends.
//
// The batched pipeline exists to amortize dispatch setup — scheduler pool
// lease, worker wake-up, OpenMP team warm-up — across many inputs of one
// problem (the serving-traffic shape of the ROADMAP north star). This
// bench quantifies it: both variants run the identical K inputs under the
// identical derived per-item seeds, so they do identical solver work and
// any gap is pure dispatch overhead. On the native backend it also counts
// pool leases (pool_cache::acquires): K for the loop, 1 for the batch.
//
// Overhead is measured drift-immune: every run_result's `seconds` clock
// starts after the scheduler is bound (core/result.h), so
//   overhead = (variant wall clock - sum of per-item solve seconds) / K
// subtracts the solve time observed in the SAME pass. Background load on
// a shared machine inflates both terms together and cancels, where raw
// wall-clock comparisons drown the lease cost in noise.
//
// Expected shape: batch overhead strictly below loop overhead from
// K >= 16 on the native backend (the loop pays K-1 extra lease cycles),
// with the gap widening as solve time shrinks relative to lease cost.
//
// Env: REPRO_SCALE scales n (default 100 per item — small on purpose:
// serving traffic is many small requests), REPRO_REPEATS repeats the
// timed section (min reported, default 5, more for small K), PP_SEED the
// base seed.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/registry.h"
#include "parallel/scheduler.h"

namespace {

constexpr const char* kSolver = "lis/parallel";
constexpr const char* kProblem = "lis";

struct pass_result {
  double wall = 0;       // whole-variant wall clock, this pass
  double solve = 0;      // sum of per-item envelope seconds, this pass
  int64_t score_sum = 0; // fold of per-item scores (agreement check)
};

struct variant_time {
  double overhead = 1e100;  // min over repeats of (wall - solve)
  double wall = 1e100;      // min over repeats of wall
  int64_t score_sum = 0;
  uint64_t leases = 0;  // native pool leases in the last pass
};

pass_result pass_loop(const std::vector<pp::problem_input>& inputs, const pp::context& ctx) {
  pass_result out;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto res =
        pp::registry::run(kSolver, inputs[i], ctx.with_seed(pp::derive_seed(ctx.seed, i)));
    out.solve += res.seconds;
    out.score_sum += pp::score_of(res.value);
  }
  auto t1 = std::chrono::steady_clock::now();
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

pass_result pass_batch(const std::vector<pp::problem_input>& inputs, const pp::context& ctx) {
  pass_result out;
  auto t0 = std::chrono::steady_clock::now();
  auto batch = pp::registry::run_batch(kSolver, inputs, ctx);
  auto t1 = std::chrono::steady_clock::now();
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  out.solve = batch.total_seconds;
  for (int64_t s : batch.scores) out.score_sum += s;
  return out;
}

// Fold one pass into the variant's running minima.
void fold(const pass_result& p, uint64_t leases, variant_time& out) {
  out.overhead = std::min(out.overhead, p.wall - p.solve);
  out.wall = std::min(out.wall, p.wall);
  out.score_sum = p.score_sum;
  out.leases = leases;
}

}  // namespace

int main() {
  pp::context base = bench::env_context();
  bench::banner("serving_batch: run_batch vs loop-of-run dispatch overhead",
                "ROADMAP: batched serving pipeline (amortized scheduler acquisition)", base);

  const size_t n = bench::scaled(100);
  // Small batches run for microseconds; give them proportionally more
  // repeats so the min is a stable estimate, not one lucky scheduling.
  auto reps_for = [](size_t K) {
    return std::max({5, bench::repeats(), static_cast<int>(512 / K)});
  };
  const size_t batch_sizes[] = {1, 16, 256};
  const pp::backend_kind backends[] = {pp::backend_kind::sequential, pp::backend_kind::openmp,
                                       pp::backend_kind::native};

  std::printf("%s on %s inputs, n = %zu per item, min over >=%d interleaved repeats\n"
              "overhead us/item = (variant wall clock - sum of per-item solve seconds) / K\n\n",
              kSolver, kProblem, n, reps_for(256));
  std::printf("%-10s %6s %16s %16s %9s %13s %6s\n", "backend", "K", "loop ovh us/item",
              "batch ovh us/item", "speedup", "leases l/b", "agree");

  auto& reg = pp::registry::instance();
  for (auto b : backends) {
    pp::context ctx = base.with_backend(b);
    for (size_t K : batch_sizes) {
      std::vector<pp::problem_input> inputs;
      inputs.reserve(K);
      for (size_t i = 0; i < K; ++i)
        inputs.push_back(reg.make_input(kProblem, n, pp::derive_seed(ctx.seed, i)));

      auto& cache = pp::detail::pool_cache::instance();
      variant_time loop, batch;
      const int reps = reps_for(K);
      // Interleave the two variants so slow drift hits both sides equally.
      for (int r = 0; r < reps; ++r) {
        uint64_t l0 = cache.acquires();
        auto pl = pass_loop(inputs, ctx);
        uint64_t l1 = cache.acquires();
        auto pb = pass_batch(inputs, ctx);
        uint64_t l2 = cache.acquires();
        fold(pl, l1 - l0, loop);
        fold(pb, l2 - l1, batch);
      }
      double lus = loop.overhead / static_cast<double>(K) * 1e6;
      double bus = batch.overhead / static_cast<double>(K) * 1e6;
      char leases[32];
      std::snprintf(leases, sizeof(leases), "%llu/%llu",
                    static_cast<unsigned long long>(loop.leases),
                    static_cast<unsigned long long>(batch.leases));
      char speedup[16];
      // The subtraction can cancel to ~0 on a fast machine; don't print inf.
      if (bus > 0)
        std::snprintf(speedup, sizeof(speedup), "%8.2fx", lus / bus);
      else
        std::snprintf(speedup, sizeof(speedup), "%9s", "-");
      std::printf("%-10s %6zu %16.1f %16.1f %s %13s %6s\n",
                  std::string(pp::backend_name(b)).c_str(), K, lus, bus, speedup, leases,
                  loop.score_sum == batch.score_sum ? "yes" : "NO");
    }
  }
  std::printf("\nleases l/b = native pool leases granted per variant pass (the loop\n"
              "pays one per item, the batch one total). Solver work is identical on\n"
              "both sides; overhead isolates dispatch setup only.\n");
  return 0;
}
