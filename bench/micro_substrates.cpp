// google-benchmark microbenchmarks for the substrates (Appendix A
// structures): PA-BST point/batch/range ops, 2D range tree query/update,
// TAS-tree marks, Fenwick prefix-max, and the pivot multimap.
#include <benchmark/benchmark.h>

#include <limits>
#include <random>

#include "core/fenwick.h"
#include "pabst/augmented_map.h"
#include "pabst/multimap.h"
#include "parallel/random.h"
#include "rangetree/policies.h"
#include "rangetree/range_tree2d.h"
#include "tastree/tas_tree.h"

namespace {

using MaxEntry = pp::max_val_entry<int64_t, int64_t, std::numeric_limits<int64_t>::min()>;
using MaxMap = pp::augmented_map<MaxEntry>;

MaxMap build_map(size_t n) {
  auto es = pp::tabulate<MaxMap::entry_t>(n, [](size_t i) {
    return MaxMap::entry_t{static_cast<int64_t>(2 * i), static_cast<int64_t>(pp::hash64(i) % 1000)};
  });
  return MaxMap::from_sorted(es);
}

void BM_PabstBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto m = build_map(n);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_PabstBuild)->Arg(1 << 14)->Arg(1 << 18);

void BM_PabstAugRange(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto m = build_map(n);
  uint64_t i = 0;
  for (auto _ : state) {
    int64_t lo = static_cast<int64_t>(pp::hash64(i++) % (2 * n));
    benchmark::DoNotOptimize(m.aug_range(lo, lo + 1000));
  }
}
BENCHMARK(BM_PabstAugRange)->Arg(1 << 18);

void BM_PabstMultiInsert(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto m = build_map(n);
    auto batch = pp::tabulate<MaxMap::entry_t>(n / 4, [&](size_t i) {
      return MaxMap::entry_t{static_cast<int64_t>(2 * i * 4 + 1), 7};
    });
    state.ResumeTiming();
    m.multi_insert(batch);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n / 4));
}
BENCHMARK(BM_PabstMultiInsert)->Arg(1 << 18);

void BM_RangeTreeQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto vals = pp::tabulate<int64_t>(n, [](size_t i) { return static_cast<int64_t>(pp::hash64(i)); });
  auto yr = pp::compute_y_ranks(std::span<const int64_t>(vals));
  pp::range_tree2d<pp::dom_agg_rightmost> t(
      yr, [](uint32_t id) { return pp::dom_agg_rightmost::unfinished_leaf(id); }, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    uint32_t q = static_cast<uint32_t>(pp::hash64(i++) % n);
    benchmark::DoNotOptimize(t.query_prefix(q, yr[q]));
  }
}
BENCHMARK(BM_RangeTreeQuery)->Arg(1 << 16)->Arg(1 << 20);

void BM_RangeTreeUpdate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto vals = pp::tabulate<int64_t>(n, [](size_t i) { return static_cast<int64_t>(pp::hash64(i)); });
  auto yr = pp::compute_y_ranks(std::span<const int64_t>(vals));
  pp::range_tree2d<pp::dom_agg_rightmost> t(
      yr, [](uint32_t id) { return pp::dom_agg_rightmost::unfinished_leaf(id); }, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    uint32_t id = static_cast<uint32_t>(pp::hash64(i++) % n);
    t.update(id, pp::dom_agg_rightmost::finished_leaf(id, static_cast<int32_t>(i % 100)));
  }
}
BENCHMARK(BM_RangeTreeUpdate)->Arg(1 << 16)->Arg(1 << 20);

void BM_TasTreeMark(benchmark::State& state) {
  uint32_t m = static_cast<uint32_t>(state.range(0));
  std::vector<uint32_t> counts = {m};
  uint32_t leaf = 0;
  pp::tas_forest f(counts);
  for (auto _ : state) {
    if (leaf == m) {
      state.PauseTiming();
      f = pp::tas_forest(counts);
      leaf = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(f.mark(0, leaf++));
  }
}
BENCHMARK(BM_TasTreeMark)->Arg(1 << 10)->Arg(1 << 16);

void BM_FenwickRaiseQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  pp::fenwick_max<int64_t> fw(n, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    size_t p = pp::hash64(i) % n;
    fw.raise(p, static_cast<int64_t>(i));
    benchmark::DoNotOptimize(fw.prefix_max(p));
    ++i;
  }
}
BENCHMARK(BM_FenwickRaiseQuery)->Arg(1 << 20);

void BM_MultimapInsertExtract(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    pp::pivot_multimap<uint32_t, uint32_t> mm;
    auto pairs = pp::tabulate<pp::pivot_multimap<uint32_t, uint32_t>::pair_t>(n, [&](size_t i) {
      return pp::pivot_multimap<uint32_t, uint32_t>::pair_t{
          static_cast<uint32_t>(pp::hash64(i) % (n / 8 + 1)), static_cast<uint32_t>(i)};
    });
    mm.multi_insert(std::move(pairs));
    auto keys = pp::tabulate<uint32_t>(n / 16, [&](size_t i) { return static_cast<uint32_t>(i); });
    benchmark::DoNotOptimize(mm.extract_buckets(keys).size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_MultimapInsertExtract)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
