// Shared driver for the LIS experiments (Fig. 8 / Fig. 9 / Table 2).
//
// Per output size, reports the exact columns of Table 2: classic
// sequential time, "ours sequential" (the parallel algorithm run under the
// sequential backend, i.e. 1 worker), "ours parallel", self-speedup, and
// the average number of wake-up attempts per object.
#pragma once

#include <cstdio>
#include <functional>
#include <vector>

#include "algos/lis.h"
#include "bench_common.h"

namespace bench {

inline void lis_table(const char* pattern_name,
                      const std::function<std::vector<int64_t>(size_t, size_t)>& make_input,
                      size_t n, const std::vector<size_t>& target_outputs) {
  std::printf("n = %zu, pattern = %s, pivot policy = rightmost (as in Sec. 6.4)\n\n", n,
              pattern_name);
  std::printf("%10s | %12s %12s %12s | %10s %12s | %8s\n", "output", "classic(s)", "ours-seq(s)",
              "ours-par(s)", "self-spd", "avg-wakeup", "rounds");
  for (size_t target : target_outputs) {
    auto a = make_input(n, target);
    pp::lis_result classic, ours_seq, ours_par;
    double tc = time_s([&] { classic = pp::lis_sequential(a); });
    double tos;
    {
      pp::scoped_backend sb(pp::backend_kind::sequential);
      tos = time_s([&] { ours_seq = pp::lis_parallel(a, pp::pivot_policy::rightmost, 1); });
    }
    double top;
    {
      // Lease the run's pool once, outside the clock — round-heavy Type-2
      // solves would otherwise pay a lease per parallel region inside the
      // timed section.
      pp::scoped_scheduler sched(pp::current_context());
      top = time_s([&] { ours_par = pp::lis_parallel(a, pp::pivot_policy::rightmost, 1); });
    }
    if (classic.length != ours_par.length || ours_seq.length != ours_par.length) {
      std::printf("LIS LENGTH MISMATCH!\n");
      std::exit(1);
    }
    std::printf("%10lld | %12.3f %12.3f %12.3f | %10.2f %12.2f | %8zu\n",
                (long long)ours_par.length, tc, tos, top, tos / top,
                ours_par.stats.avg_wakeups(), ours_par.stats.rounds);
  }
  std::printf("\nShape check vs paper (Fig. 8/9, Tab. 2): parallel time grows with the\n"
              "output size; classic seq gets slightly faster; avg wake-ups stays well\n"
              "below log2(n); self-speedup bounded by the machine's %u workers.\n",
              pp::num_workers());
}

}  // namespace bench
