// Whac-A-Mole (Appendix B): time and wake-ups vs rank, sequential vs the
// phase-parallel dominance engine. The board width (position range)
// relative to the time range controls how many moles chain together.
#include <cstdio>

#include "algos/whac.h"
#include "bench_common.h"

int main() {
  bench::banner("Whac-A-Mole: time vs rank", "Appendix B");
  size_t n = bench::scaled(300'000);
  constexpr int64_t t_range = 100'000'000;
  std::printf("n = %zu moles, time range [0, %lld)\n\n", n, (long long)t_range);
  std::printf("%12s %8s | %10s %10s | %10s %8s\n", "p_range", "rank", "seq(s)", "par(s)",
              "avg-wakeup", "rounds");
  for (int64_t p_range : {100'000'000ll, 10'000'000ll, 1'000'000ll, 100'000ll}) {
    auto moles = pp::random_moles(n, t_range, p_range, 5);
    pp::whac_result seq, par;
    double ts = bench::time_s([&] { seq = pp::whac_sequential(moles); });
    double tp = bench::time_s([&] { par = pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1); });
    if (seq.dp != par.dp) {
      std::printf("MISMATCH!\n");
      return 1;
    }
    std::printf("%12lld %8lld | %10.3f %10.3f | %10.2f %8zu\n", (long long)p_range,
                (long long)par.best, ts, tp, par.stats.avg_wakeups(), par.stats.rounds);
  }
  std::printf("\nShape check: narrower boards => deeper chains => more rounds and a\n"
              "slower parallel run, exactly like LIS with larger output sizes.\n");
  return 0;
}
