// serving_async: throughput and latency of the async serving engine for N
// concurrent closed-loop clients, micro-batching on vs off.
//
// Each client thread submits one request at a time (closed loop: submit,
// wait, repeat), so N clients keep N requests in flight — the serving
// shape the pp::serve engine exists for. Both modes run the identical
// request stream (same solver, same per-request seeds, same tiny n — many
// small requests is the traffic the ROADMAP north star describes):
//
//   batching OFF  max_batch = 1, window = 0: every request is its own
//                 run_batch flush — one pool lease per request;
//   batching ON   max_batch = clients, window = 200 us: concurrent
//                 requests coalesce into shared flushes.
//
// Reported per mode: wall clock, requests/s, p50/p95 latency
// (submit -> future ready), pool leases, flushes, and per-request dispatch
// overhead = (engine exec_seconds - sum of per-item solve seconds) /
// requests. exec_seconds is the summed wall clock of the run_batch
// flushes themselves (engine_stats), so the metric isolates lease cycles +
// scope setup + demux from solve time like bench/serving_batch — but stays
// meaningful with concurrent executors, where comparing against
// end-to-end wall clock would not (summed solve time exceeds wall).
// Expected shape: at >= 32 clients, batching-on overhead is strictly below
// batching-off (each flush pays one lease for many requests), with the
// gap widening as solve time shrinks.
//
// Output: the human table, or with --json a single JSON envelope whose
// deterministic_top / deterministic_row lists tell the generic checker
// (tools/bench_baseline_check.py) which fields the committed baseline
// BENCH_serving_async.json locks in CI: the per-mode score folds and the
// cross-mode agreement (batching must never change answers). Leases,
// flushes, and every latency number depend on timing — how many requests
// coalesce per window is scheduler luck — so they are reported, never
// compared. Regenerate with
// `bench/serving_async --json > BENCH_serving_async.json` after an
// intentional change.
//
// Env: REPRO_SCALE scales n (default 100 per request), PP_SEED the base
// seed, PP_BACKEND the execution backend. Engine executors default to 2
// with an even machine partition per run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/json.h"
#include "core/registry.h"
#include "parallel/scheduler.h"
#include "serve/engine.h"

namespace {

constexpr const char* kSolver = "lis/parallel";
constexpr const char* kProblem = "lis";

struct mode_result {
  double wall = 0;
  double solve = 0;  // summed per-item envelope seconds
  double exec = 0;   // summed engine flush wall clock (engine_stats)
  double p50_us = 0;
  double p95_us = 0;
  uint64_t leases = 0;
  uint64_t flushes = 0;
  int64_t score_sum = 0;
};

mode_result run_mode(size_t clients, size_t per_client, size_t n, bool batching,
                     const pp::context& base) {
  pp::serve::engine_options opt;
  opt.max_inflight_runs = 2;
  opt.workers_per_run = 0;  // partition the machine across the executors
  opt.queue_capacity = clients * 2 + 16;
  opt.batch_window = batching ? std::chrono::microseconds{100} : std::chrono::microseconds{0};
  opt.max_batch = batching ? clients : 1;
  opt.ctx = base;
  pp::serve::engine eng(opt);

  // Pre-build every client's inputs so generation cost stays outside the
  // timed section. Client c request r uses seed derive_seed(base, c*R+r),
  // identical across modes.
  std::vector<std::vector<pp::problem_input>> inputs(clients);
  auto& reg = pp::registry::instance();
  for (size_t c = 0; c < clients; ++c) {
    inputs[c].reserve(per_client);
    for (size_t r = 0; r < per_client; ++r)
      inputs[c].push_back(
          reg.make_input(kProblem, n, pp::derive_seed(base.seed, c * per_client + r)));
  }

  auto& cache = pp::detail::pool_cache::instance();
  uint64_t leases_before = cache.acquires();

  std::vector<double> latencies(clients * per_client, 0.0);
  std::vector<double> solve(clients, 0.0);
  std::vector<int64_t> score(clients, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t r = 0; r < per_client; ++r) {
        pp::serve::request req;
        req.solver = kSolver;
        req.input = std::move(inputs[c][r]);
        req.seed = pp::derive_seed(base.seed, c * per_client + r);
        auto t0 = std::chrono::steady_clock::now();
        auto fut = eng.submit(std::move(req));
        pp::serve::response resp = fut.get();
        auto t1 = std::chrono::steady_clock::now();
        latencies[c * per_client + r] = std::chrono::duration<double>(t1 - t0).count();
        if (resp.ok()) {
          solve[c] += resp.result.seconds;
          score[c] += pp::score_of(resp.result.value);
        }
      }
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();
  auto st = eng.stats();
  eng.stop();

  mode_result out;
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  out.exec = st.exec_seconds;
  for (double s : solve) out.solve += s;
  for (int64_t s : score) out.score_sum += s;
  out.leases = cache.acquires() - leases_before;
  out.flushes = st.batches;
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](size_t p) {
    size_t rank = (latencies.size() * p + 99) / 100;
    return latencies[rank == 0 ? 0 : rank - 1] * 1e6;
  };
  out.p50_us = pct(50);
  out.p95_us = pct(95);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = bench::has_flag(argc, argv, "--json");
  pp::context base = bench::env_context();

  const size_t n = bench::scaled(100);
  const size_t per_client = 32;
  const size_t client_counts[] = {1, 8, 32};

  if (!json) {
    bench::banner("serving_async: engine throughput/latency, micro-batching on vs off",
                  "ROADMAP: async serving engine (admission control + dynamic batching)", base);
    std::printf("%s, n = %zu per request, %zu requests per client, closed loop\n"
                "overhead us/req = (engine exec seconds - sum of per-item solve seconds) / requests\n\n",
                kSolver, n, per_client);
    std::printf("%8s %6s %10s %10s %10s %10s %9s %9s %16s %6s\n", "clients", "batch", "wall s",
                "req/s", "p50 us", "p95 us", "leases", "flushes", "overhead us/req", "agree");
  }

  struct json_row {
    size_t clients;
    bool batching;
    mode_result m;
  };
  std::vector<json_row> rows;
  bool pass = true;
  for (size_t clients : client_counts) {
    mode_result off = run_mode(clients, per_client, n, /*batching=*/false, base);
    mode_result on = run_mode(clients, per_client, n, /*batching=*/true, base);
    pass = pass && on.score_sum == off.score_sum;
    const double reqs = static_cast<double>(clients * per_client);
    if (!json) {
      auto row = [&](const char* mode, const mode_result& m, const char* agree) {
        std::printf("%8zu %6s %10.4f %10.0f %10.1f %10.1f %9llu %9llu %16.1f %6s\n", clients,
                    mode, m.wall, reqs / m.wall, m.p50_us, m.p95_us,
                    static_cast<unsigned long long>(m.leases),
                    static_cast<unsigned long long>(m.flushes),
                    (m.exec - m.solve) / reqs * 1e6, agree);
      };
      row("off", off, "");
      row("on", on, on.score_sum == off.score_sum ? "yes" : "NO");
    }
    rows.push_back({clients, false, off});
    rows.push_back({clients, true, on});
  }

  if (json) {
    // Deterministic fields only cover WHAT was computed (same seeds ->
    // same score folds in both modes); how the requests coalesced —
    // leases, flushes, every latency — is timing and stays uncompared.
    pp::json::writer w;
    bench::begin_envelope(w, "serving_async", {"solver", "n", "per_client", "pass"},
                          {"clients", "batching", "requests", "score_sum"});
    w.member("solver", kSolver);
    w.member("n", static_cast<uint64_t>(n));
    w.member("per_client", static_cast<uint64_t>(per_client));
    w.member("pass", pass);
    w.key("rows").begin_array();
    for (const auto& r : rows) {
      const double reqs = static_cast<double>(r.clients * per_client);
      w.begin_object();
      w.member("clients", static_cast<uint64_t>(r.clients)).member("batching", r.batching);
      w.member("requests", static_cast<uint64_t>(r.clients * per_client));
      w.member("score_sum", r.m.score_sum);
      w.member("wall_seconds", r.m.wall).member("p50_us", r.m.p50_us);
      w.member("p95_us", r.m.p95_us).member("leases", r.m.leases);
      w.member("flushes", r.m.flushes);
      w.member("overhead_us_per_req", (r.m.exec - r.m.solve) / reqs * 1e6);
      w.end_object();
    }
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("\nagree = both modes fold identical per-request scores (same seeds).\n"
                "Batching-on coalesces concurrent requests into shared flushes: fewer\n"
                "leases, strictly lower per-request dispatch overhead at high client\n"
                "counts (the p50/p95 columns keep the latency cost of the window and\n"
                "of batchmates sharing a flush honest).\n");
  }
  return pass ? 0 : 1;
}
