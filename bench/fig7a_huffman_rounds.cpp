// Fig. 7(a): Huffman construction, fixed n, running time vs number of
// rounds (uniform and exponential frequency distributions).
//
// Paper setup: n = 1e9; rounds vary 33..58 by changing distribution
// parameters; running time is nearly flat in the round count because every
// round still has abundant parallelism.
#include <cstdio>

#include "algos/huffman.h"
#include "bench_common.h"

int main() {
  bench::banner("Huffman: time vs rounds (fixed n)", "Fig. 7(a), Sec. 6.2");
  size_t n = bench::scaled(2'000'000);
  std::printf("n = %zu symbols\n\n", n);
  std::printf("%-14s %14s %8s %8s %10s\n", "distribution", "param", "rounds", "height",
              "par(s)");
  for (uint64_t max_f : {1ull << 8, 1ull << 12, 1ull << 16, 1ull << 24, 1ull << 31}) {
    auto freqs = pp::uniform_freqs(n, max_f, 3);
    pp::huffman_result r;
    double t = bench::time_s([&] { r = pp::huffman_parallel(freqs); });
    std::printf("%-14s %14llu %8zu %8u %10.3f\n", "uniform", (unsigned long long)max_f,
                r.stats.rounds, r.height, t);
  }
  for (double lambda : {1e-2, 1e-4, 1e-6}) {
    auto freqs = pp::exponential_freqs(n, lambda, 1ull << 40, 5);
    pp::huffman_result r;
    double t = bench::time_s([&] { r = pp::huffman_parallel(freqs); });
    std::printf("%-14s %14g %8zu %8u %10.3f\n", "exponential", lambda, r.stats.rounds, r.height,
                t);
  }
  std::printf("\nShape check vs paper: round counts stay within a few dozen and the\n"
              "running time is nearly flat across them.\n");
  return 0;
}
